package trace

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableText(t *testing.T) {
	tb := NewTable("demo", "n", "rounds")
	tb.AddRow("1024", "1236")
	tb.AddRow("4096", "1556")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "n", "rounds", "1024", "1556", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	if tb.Title() != "demo" {
		t.Errorf("Title = %q", tb.Title())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxxx", "y")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	// Column 2 starts at the same offset in header and data row.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[2], "y") {
		t.Errorf("misaligned columns:\n%s", sb.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow(`with,comma`, `with"quote`)
	tb.AddRow("with\nnewline", `both,"of them`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "name,value\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "plain,1\n") {
		t.Errorf("plain cells must not be quoted: %q", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Errorf("quote cell not escaped: %q", out)
	}
	if !strings.Contains(out, "\"with\nnewline\"") {
		t.Errorf("newline cell not quoted: %q", out)
	}
	if !strings.Contains(out, `"both,""of them"`) {
		t.Errorf("mixed cell not escaped: %q", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Title", "x", "y")
	tb.AddRow("1", "2")
	var sb strings.Builder
	if err := tb.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "**Title**") || !strings.Contains(out, "| x | y |") {
		t.Errorf("markdown output wrong:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestTableRowValidation(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity did not panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableNeedsColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty headers did not panic")
		}
	}()
	NewTable("t")
}

func TestAddRowValuesFormats(t *testing.T) {
	tb := NewTable("t", "int", "float", "string")
	tb.AddRowValues(42, 3.14159265, "hi")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "42,3.142,hi") {
		t.Errorf("formatted row wrong: %q", sb.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty input -> %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Errorf("length %d, want 4 runes: %q", utf8.RuneCountInString(s), s)
	}
	// Monotone data: first rune is the lowest level, last the highest.
	first, _ := utf8.DecodeRuneInString(s)
	last, _ := utf8.DecodeLastRuneInString(s)
	if first != '▁' || last != '█' {
		t.Errorf("sparkline ends %q and %q: %q", first, last, s)
	}
	// Constant data: all minimum level, no panic.
	c := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(c) != 3 {
		t.Errorf("constant sparkline %q", c)
	}
}
