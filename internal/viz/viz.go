// Package viz renders simple terminal plots (line charts and scatter
// plots on a character grid) for simulation output: bias trajectories,
// scaling curves, success-rate sweeps. Standard library only; the plots
// are deterministic so they can be asserted in tests.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot is a character-grid chart. Build with NewPlot, add one or more
// series, then Render.
type Plot struct {
	title         string
	width, height int
	xlabel        string
	ylabel        string
	series        []series
	// optional fixed ranges; NaN means autoscale.
	xmin, xmax, ymin, ymax float64
	logX, logY             bool
}

type series struct {
	name   string
	marker byte
	xs, ys []float64
}

// NewPlot creates a plot with the given title and grid size (characters).
// Width and height are clamped to at least 16×4.
func NewPlot(title string, width, height int) *Plot {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	return &Plot{
		title: title, width: width, height: height,
		xmin: math.NaN(), xmax: math.NaN(), ymin: math.NaN(), ymax: math.NaN(),
	}
}

// XLabel sets the x-axis label.
func (p *Plot) XLabel(s string) *Plot { p.xlabel = s; return p }

// YLabel sets the y-axis label.
func (p *Plot) YLabel(s string) *Plot { p.ylabel = s; return p }

// YRange fixes the y-axis range instead of autoscaling.
func (p *Plot) YRange(min, max float64) *Plot {
	if !(min < max) {
		panic(fmt.Sprintf("viz: invalid y range [%v, %v]", min, max))
	}
	p.ymin, p.ymax = min, max
	return p
}

// LogLog switches both axes to logarithmic scale (all data must be
// positive).
func (p *Plot) LogLog() *Plot { p.logX, p.logY = true, true; return p }

// Line adds a series plotted with the given marker. xs and ys must have
// equal nonzero length.
func (p *Plot) Line(name string, marker byte, xs, ys []float64) *Plot {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic(fmt.Sprintf("viz: series %q has %d xs and %d ys", name, len(xs), len(ys)))
	}
	p.series = append(p.series, series{name: name, marker: marker, xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)})
	return p
}

// Series adds a y-only series with xs = 0..len-1 (a trajectory).
func (p *Plot) Series(name string, marker byte, ys []float64) *Plot {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return p.Line(name, marker, xs, ys)
}

func (p *Plot) transform(x, y float64) (float64, float64) {
	if p.logX {
		x = math.Log10(x)
	}
	if p.logY {
		y = math.Log10(y)
	}
	return x, y
}

// Render writes the plot to w.
func (p *Plot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("viz: plot %q has no series", p.title)
	}
	// Determine ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.xs {
			x, y := p.transform(s.xs[i], s.ys[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				return fmt.Errorf("viz: series %q has non-finite point after transform (log scale with nonpositive data?)", s.name)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if !math.IsNaN(p.ymin) {
		ymin, ymax = p.ymin, p.ymax
		if p.logY {
			ymin, ymax = math.Log10(ymin), math.Log10(ymax)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, p.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.width))
	}
	plot := func(x, y float64, marker byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(p.width-1)))
		row := int(math.Round((y - ymin) / (ymax - ymin) * float64(p.height-1)))
		if col < 0 || col >= p.width || row < 0 || row >= p.height {
			return
		}
		grid[p.height-1-row][col] = marker
	}
	for _, s := range p.series {
		// Linear interpolation between consecutive points for line look.
		for i := 0; i+1 < len(s.xs); i++ {
			x0, y0 := p.transform(s.xs[i], s.ys[i])
			x1, y1 := p.transform(s.xs[i+1], s.ys[i+1])
			steps := p.width
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				plot(x0+f*(x1-x0), y0+f*(y1-y0), s.marker)
			}
		}
		for i := range s.xs {
			x, y := p.transform(s.xs[i], s.ys[i])
			plot(x, y, s.marker)
		}
	}

	var b strings.Builder
	if p.title != "" {
		fmt.Fprintf(&b, "%s\n", p.title)
	}
	yTop, yBot := ymax, ymin
	if p.logY {
		yTop, yBot = math.Pow(10, ymax), math.Pow(10, ymin)
	}
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", yTop)
		} else if r == p.height-1 {
			label = fmt.Sprintf("%8.3g", yBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	xLo, xHi := xmin, xmax
	if p.logX {
		xLo, xHi = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 8), p.width/2, xLo, p.width-p.width/2, xHi)
	if p.xlabel != "" || p.ylabel != "" {
		fmt.Fprintf(&b, "          x: %s   y: %s\n", p.xlabel, p.ylabel)
	}
	var legend []string
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c = %s", s.marker, s.name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "          %s\n", strings.Join(legend, ", "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
