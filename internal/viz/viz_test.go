package viz

import (
	"strings"
	"testing"
)

func render(t *testing.T, p *Plot) string {
	t.Helper()
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestPlotBasics(t *testing.T) {
	p := NewPlot("demo", 40, 10).
		XLabel("round").YLabel("bias").
		Series("bias", '*', []float64{0, 0.1, 0.2, 0.3, 0.5})
	out := render(t, p)
	for _, want := range []string{"demo", "*", "x: round", "y: bias", "* = bias"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 grid rows + x-axis + labels + legend
	if len(lines) != 14 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestPlotMonotoneSeriesRises(t *testing.T) {
	p := NewPlot("", 30, 8).Series("s", 'o', []float64{1, 2, 3, 4, 5, 6, 7, 8})
	out := render(t, p)
	rows := strings.Split(out, "\n")
	// The first marker of the top row must be to the right of the first
	// marker of the bottom row (rising line).
	var topCol, botCol int = -1, -1
	gridRows := rows[0:8]
	topCol = strings.IndexByte(gridRows[0], 'o')
	botCol = strings.IndexByte(gridRows[7], 'o')
	if topCol < 0 || botCol < 0 {
		t.Fatalf("markers missing:\n%s", out)
	}
	if topCol <= botCol {
		t.Errorf("rising series rendered falling (top %d, bottom %d):\n%s", topCol, botCol, out)
	}
}

func TestPlotMultipleSeriesLegend(t *testing.T) {
	p := NewPlot("t", 20, 5).
		Series("a", 'a', []float64{1, 2}).
		Series("b", 'b', []float64{2, 1})
	out := render(t, p)
	if !strings.Contains(out, "a = a, b = b") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestPlotYRange(t *testing.T) {
	p := NewPlot("t", 20, 5).YRange(0, 1).Series("s", '*', []float64{0.5, 0.5})
	out := render(t, p)
	if !strings.Contains(out, "1") || !strings.Contains(out, "0") {
		t.Errorf("fixed range labels missing:\n%s", out)
	}
}

func TestPlotYRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid YRange did not panic")
		}
	}()
	NewPlot("t", 20, 5).YRange(1, 1)
}

func TestPlotLogLog(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	ys := []float64{2, 20, 200, 2000}
	out := render(t, NewPlot("loglog", 40, 10).LogLog().Line("p", '+', xs, ys))
	if !strings.Contains(out, "+") {
		t.Fatalf("no markers:\n%s", out)
	}
	// Log-scale axis labels show the original (not log) bounds.
	if !strings.Contains(out, "1000") {
		t.Errorf("x range label missing:\n%s", out)
	}
}

func TestPlotLogLogRejectsNonpositive(t *testing.T) {
	p := NewPlot("bad", 20, 5).LogLog().Line("p", '+', []float64{0, 1}, []float64{1, 2})
	var sb strings.Builder
	if err := p.Render(&sb); err == nil {
		t.Fatal("log plot accepted nonpositive data")
	}
}

func TestPlotNoSeries(t *testing.T) {
	var sb strings.Builder
	if err := NewPlot("empty", 20, 5).Render(&sb); err == nil {
		t.Fatal("empty plot rendered without error")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	out := render(t, NewPlot("const", 20, 5).Series("c", '#', []float64{3, 3, 3}))
	if !strings.Contains(out, "#") {
		t.Fatalf("constant series missing markers:\n%s", out)
	}
}

func TestPlotSeriesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	NewPlot("t", 20, 5).Line("bad", '*', []float64{1, 2}, []float64{1})
}

func TestPlotMinimumSize(t *testing.T) {
	p := NewPlot("tiny", 1, 1).Series("s", '*', []float64{1, 2})
	out := render(t, p)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestPlotDoesNotMutateInput(t *testing.T) {
	ys := []float64{1, 2, 3}
	p := NewPlot("t", 20, 5).Series("s", '*', ys)
	_ = render(t, p)
	if ys[0] != 1 || ys[2] != 3 {
		t.Fatal("input mutated")
	}
}
